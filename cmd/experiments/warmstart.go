package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/state"
	"repro/internal/trace"
)

// The warmstart experiment proves the snapshot/restore contract on the
// paper's headline predictor (PPM-hyb): a predictor restored from a snapshot
// continues exactly as one that never stopped, down to the serialized bytes
// of its final state. Three modes share the runner:
//
//   - default: for every suite run, cut the trace at its midpoint, snapshot,
//     restore into a fresh engine, finish on the restored engine, and compare
//     final snapshots against the uncut run;
//   - -savestate FILE: simulate the first half of the first selected run and
//     write the snapshot to FILE;
//   - -warmstart FILE: restore FILE into a fresh engine, finish the same
//     run, and compare against an uncut local run — pairing the two flags
//     across separate processes proves the bytes carry everything.
func printWarmstart(e *env) {
	switch {
	case e.savestate != "":
		saveWarmstart(e)
	case e.warmstart != "":
		runWarmstart(e)
	default:
		printWarmstartDemo(e)
	}
}

func newHybEngine() *sim.Engine { return sim.New(core.PaperHyb()) }

// warmstartRun picks the trace the cross-process modes operate on: the first
// run of the (possibly -run filtered) suite.
func (e *env) warmstartRun() (name string, half int, recs []trace.Record) {
	if len(e.suite) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: -run filter matched no runs")
		os.Exit(2)
	}
	cfg := e.suite[0]
	r, _ := e.cache.Get(cfg)
	return cfg.String(), len(r) / 2, r
}

func saveWarmstart(e *env) {
	name, half, recs := e.warmstartRun()
	eng := newHybEngine()
	eng.ProcessAll(recs[:half])
	data := state.SaveBytes(eng)
	if err := os.WriteFile(e.savestate, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(e.out, "Warm start: saved PPM-hyb state after %d/%d records of %s -> %s (%d bytes)\n\n",
		half, len(recs), name, e.savestate, len(data))
}

func runWarmstart(e *env) {
	name, half, recs := e.warmstartRun()
	data, err := os.ReadFile(e.warmstart)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	eng := newHybEngine()
	if err := state.LoadBytes(eng, data); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: restore:", err)
		os.Exit(1)
	}
	eng.ProcessAll(recs[half:])

	full := newHybEngine()
	full.ProcessAll(recs)
	match := bytes.Equal(state.SaveBytes(eng), state.SaveBytes(full))
	fmt.Fprintf(e.out, "Warm start: %s restored from %s at record %d/%d\n",
		name, e.warmstart, half, len(recs))
	fmt.Fprintf(e.out, "  restored continuation: %s mispredict, uncut run: %s\n",
		report.Pct(eng.Counters()[0].MispredictionRatio()),
		report.Pct(full.Counters()[0].MispredictionRatio()))
	if !match {
		fmt.Fprintln(e.out, "  final state: DIVERGED")
		os.Exit(1)
	}
	fmt.Fprintf(e.out, "  final state: byte-identical (%d bytes)\n\n", len(state.SaveBytes(full)))
}

func printWarmstartDemo(e *env) {
	type row struct {
		name      string
		ratio     float64
		snapBytes int
		cut, n    int
		match     bool
	}
	rows := make([]row, len(e.suite))
	e.pool.Map(len(e.suite), func(i int) {
		recs, _ := e.cache.Get(e.suite[i])
		half := len(recs) / 2

		full := newHybEngine()
		full.ProcessAll(recs)

		pre := newHybEngine()
		pre.ProcessAll(recs[:half])
		snap := state.SaveBytes(pre)
		cont := newHybEngine()
		match := state.LoadBytes(cont, snap) == nil
		if match {
			cont.ProcessAll(recs[half:])
			match = bytes.Equal(state.SaveBytes(cont), state.SaveBytes(full))
		}
		rows[i] = row{
			name: e.suite[i].String(), ratio: full.Counters()[0].MispredictionRatio(),
			snapBytes: len(snap), cut: half, n: len(recs), match: match,
		}
	})

	t := report.NewTable("Warm start: PPM-hyb snapshot/restore at the trace midpoint",
		"run", "cut", "snapshot B", "mispredict", "continuation")
	diverged := false
	for _, r := range rows {
		verdict := "byte-identical"
		if !r.match {
			verdict, diverged = "DIVERGED", true
		}
		t.AddRowf(r.name, fmt.Sprintf("%d/%d", r.cut, r.n), r.snapBytes,
			report.Pct(r.ratio), verdict)
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
	if diverged {
		os.Exit(1)
	}
}
