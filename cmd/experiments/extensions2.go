package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/cascade"
	"repro/internal/cbt"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/pipeline"
	"repro/internal/predictor"
	"repro/internal/report"
	"repro/internal/twolevel"
)

// printIPC converts the Figure 6 accuracy comparison into the front-end
// timing terms the paper's introduction argues in: IPC on a 4-wide machine
// with a 10-cycle misprediction penalty, counting only indirect-branch
// mispredictions (conditional prediction assumed perfect to isolate the
// effect under study).
func printIPC(e *env) {
	cfg := pipeline.Default4Wide
	names := []string{"BTB", "TC-PIB", "Cascade", "PPM-hyb"}
	t := report.NewTable(
		fmt.Sprintf("Motivation: IPC impact of indirect misprediction (%d-wide, %d-cycle refill)",
			cfg.Width, cfg.MispredictPenalty),
		append([]string{"run", "perfect-IPC"}, append(names, "PPM speedup vs BTB")...)...)
	results := e.simulate(func() []predictor.IndirectPredictor {
		preds := make([]predictor.IndirectPredictor, len(names))
		for i, n := range names {
			preds[i], _ = bench.NewPredictor(n)
		}
		return preds
	})
	for _, res := range results {
		sum := res.Summary
		row := []string{res.Config.String(), fmt.Sprintf("%.2f", cfg.Estimate(sum.Instructions, 0).IPC)}
		var btbRes, ppmRes pipeline.Result
		for i, c := range res.Counters {
			ipc := cfg.Estimate(sum.Instructions, c.Mispredictions())
			row = append(row, fmt.Sprintf("%.2f", ipc.IPC))
			switch names[i] {
			case "BTB":
				btbRes = ipc
			case "PPM-hyb":
				ppmRes = ipc
			}
		}
		row = append(row, fmt.Sprintf("%.2fx", pipeline.Speedup(btbRes, ppmRes)))
		t.AddRow(row...)
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}

// printTagged runs the tagged-versions study the paper lists as future
// work ("we need to consider tagged versions of all the predictors"),
// comparing each tagless design with its tagged counterpart.
func printTagged(e *env) {
	build := func() []predictor.IndirectPredictor {
		taggedTC := twolevel.NewTargetCache(twolevel.TargetCacheConfig{
			Name: "TC-tagged", Entries: 2048, HistoryBits: 11, BitsPerTarget: 2,
			HistoryStream: history.IndirectBranches, Tagged: true,
		})
		taggedGAp := twolevel.NewGAp(twolevel.GApConfig{
			Name: "GAp-tagged", Entries: 2048, PHTs: 2, Assoc: 4, Tagged: true,
			PathLength: 5, BitsPerTarget: 2,
			HistoryStream: history.IndirectBranches, Indexing: twolevel.GShare,
		})
		taggedPPMCfg := core.DefaultConfig(core.Hybrid)
		taggedPPMCfg.Tagged = true
		taggedPPMCfg.Name = "PPM-tagged"
		tc, _ := bench.NewPredictor("TC-PIB")
		gap, _ := bench.NewPredictor("GAp")
		ppm, _ := bench.NewPredictor("PPM-hyb")
		return []predictor.IndirectPredictor{
			tc, taggedTC, gap, taggedGAp, ppm, core.New(taggedPPMCfg),
		}
	}
	names, means := meanOver(e, build)
	t := report.NewTable("Extension: tagless vs tagged predictor versions (mean mispred %)",
		"predictor", "mean mispred %")
	for _, n := range names {
		t.AddRowf(n, 100*means[n])
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}

// printCBT evaluates the Case Block Table of Related Work at several
// value-availability levels against the PPM, quantifying the limitation
// the paper cites (the switch value is often unknown at fetch).
func printCBT(e *env) {
	t := report.NewTable("Related work: Case Block Table vs value availability (mean mispred %)",
		"predictor", "mean mispred %")
	for _, avail := range []float64{1.0, 0.75, 0.5, 0.0} {
		name := fmt.Sprintf("CBT(p=%.2f)", avail)
		_, means := meanOver(e, func() []predictor.IndirectPredictor {
			return []predictor.IndirectPredictor{cbt.New(cbt.Config{
				Entries: 2048, Availability: avail, Seed: 0xCB7,
			})}
		})
		t.AddRowf(name, 100*means[name])
	}
	_, means := meanOver(e, func() []predictor.IndirectPredictor {
		p, _ := bench.NewPredictor("PPM-hyb")
		return []predictor.IndirectPredictor{p}
	})
	t.AddRowf("PPM-hyb (reference)", 100*means["PPM-hyb"])
	t.Render(e.out)
	fmt.Fprintln(e.out, "(the CBT only helps MT jmp switches; MT jsr calls have no switch value)")
	fmt.Fprintln(e.out)
}

// printFilterPolicy compares the strict and leaky Cascade filter
// disciplines of Driesen & Hölzle.
func printFilterPolicy(e *env) {
	build := func() []predictor.IndirectPredictor {
		leaky := cascade.Paper()
		strictCfg := cascade.Config{
			Name:          "Cascade-strict",
			FilterEntries: 128,
			Policy:        cascade.Strict,
			Main: twolevel.DualPathConfig{
				Selectors: 1024,
				Short: twolevel.GApConfig{
					Entries: 1024, PHTs: 1, Assoc: 4, Tagged: true,
					PathLength: 4, BitsPerTarget: 6, HistoryBits: 24,
					HistoryStream: history.MTIndirectBranches,
					Indexing:      twolevel.ReverseInterleave,
				},
				Long: twolevel.GApConfig{
					Entries: 1024, PHTs: 1, Assoc: 4, Tagged: true,
					PathLength: 6, BitsPerTarget: 4, HistoryBits: 24,
					HistoryStream: history.MTIndirectBranches,
					Indexing:      twolevel.ReverseInterleave,
				},
			},
		}
		return []predictor.IndirectPredictor{leaky, cascade.New(strictCfg)}
	}
	names, means := meanOver(e, build)
	t := report.NewTable("Extension: Cascade filter policy (mean mispred %)",
		"policy", "mean mispred %")
	for _, n := range names {
		t.AddRowf(n, 100*means[n])
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}
