package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/condbr"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// printProfile classifies each run's dynamic MT branch population in the
// paper's monomorphic / low-entropy / polymorphic terms (Section 2,
// footnotes 2-3) — the validation that the synthetic models carry the
// population structure the paper attributes to each benchmark.
func printProfile(suite []workload.Config) {
	t := report.NewTable("Branch population classification (dynamic MT execution shares, %)",
		"run", "monomorphic", "low-entropy", "polymorphic", "mean entropy (bits)")
	for _, cfg := range suite {
		p := analysis.NewProfiler()
		cfg.Generate(p.Observe)
		pop := p.Classify()
		t.AddRowf(cfg.String(),
			100*pop.MonomorphicShare, 100*pop.LowEntropyShare, 100*pop.PolymorphicShare,
			pop.MeanEntropy)
	}
	t.Render(os.Stdout)
	fmt.Println()
}

// printCond runs the Section 3 conditional-branch predictors over the
// suite's conditional stream: the PPM-for-directions algorithm the paper
// uses to introduce the concept, against the classic bimodal and GAg.
func printCond(suite []workload.Config) {
	t := report.NewTable("Section 3 substrate: conditional branch direction predictors (mispred %)",
		"run", "bimodal-2K", "GAg-12", "PPM-cond(8)")
	type accT struct{ miss, total uint64 }
	var sums [3]accT
	for _, cfg := range suite {
		bi := condbr.NewBimodal(2048)
		ga := condbr.NewGAg(12)
		pp := condbr.NewPPM(8)
		var acc [3]accT
		cfg.Generate(func(r trace.Record) {
			if r.Class != trace.CondDirect {
				return
			}
			preds := [3]bool{bi.Predict(r.PC), ga.Predict(), pp.Predict()}
			for i, p := range preds {
				acc[i].total++
				if p != r.Taken {
					acc[i].miss++
				}
			}
			bi.Update(r.PC, r.Taken)
			ga.Update(r.Taken)
			pp.Update(r.Taken)
		})
		row := []string{cfg.String()}
		for i := range acc {
			row = append(row, report.Pct(float64(acc[i].miss)/float64(acc[i].total)))
			sums[i].miss += acc[i].miss
			sums[i].total += acc[i].total
		}
		t.AddRow(row...)
	}
	row := []string{"TOTAL"}
	for i := range sums {
		row = append(row, report.Pct(float64(sums[i].miss)/float64(sums[i].total)))
	}
	t.AddRow(row...)
	t.Render(os.Stdout)
	fmt.Println("(runs with CondNoise 1 are data-random: every predictor converges to the taken bias)")
	fmt.Println()
}
