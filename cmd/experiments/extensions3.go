package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/condbr"
	"repro/internal/report"
	"repro/internal/trace"
)

// printProfile classifies each run's dynamic MT branch population in the
// paper's monomorphic / low-entropy / polymorphic terms (Section 2,
// footnotes 2-3) — the validation that the synthetic models carry the
// population structure the paper attributes to each benchmark.
func printProfile(e *env) {
	pops := make([]analysis.Population, len(e.suite))
	e.pool.Map(len(e.suite), func(i int) {
		recs, _ := e.cache.Get(e.suite[i])
		p := analysis.NewProfiler()
		for _, r := range recs {
			p.Observe(r)
		}
		pops[i] = p.Classify()
	})
	t := report.NewTable("Branch population classification (dynamic MT execution shares, %)",
		"run", "monomorphic", "low-entropy", "polymorphic", "mean entropy (bits)")
	for i, cfg := range e.suite {
		pop := pops[i]
		t.AddRowf(cfg.String(),
			100*pop.MonomorphicShare, 100*pop.LowEntropyShare, 100*pop.PolymorphicShare,
			pop.MeanEntropy)
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}

// printCond runs the Section 3 conditional-branch predictors over the
// suite's conditional stream: the PPM-for-directions algorithm the paper
// uses to introduce the concept, against the classic bimodal and GAg.
func printCond(e *env) {
	type accT struct{ miss, total uint64 }
	accs := make([][3]accT, len(e.suite))
	e.pool.Map(len(e.suite), func(i int) {
		recs, _ := e.cache.Get(e.suite[i])
		bi := condbr.NewBimodal(2048)
		ga := condbr.NewGAg(12)
		pp := condbr.NewPPM(8)
		var acc [3]accT
		for _, r := range recs {
			if r.Class != trace.CondDirect {
				continue
			}
			preds := [3]bool{bi.Predict(r.PC), ga.Predict(), pp.Predict()}
			for j, p := range preds {
				acc[j].total++
				if p != r.Taken {
					acc[j].miss++
				}
			}
			bi.Update(r.PC, r.Taken)
			ga.Update(r.Taken)
			pp.Update(r.Taken)
		}
		accs[i] = acc
	})
	t := report.NewTable("Section 3 substrate: conditional branch direction predictors (mispred %)",
		"run", "bimodal-2K", "GAg-12", "PPM-cond(8)")
	var sums [3]accT
	for i, cfg := range e.suite {
		row := []string{cfg.String()}
		for j := range accs[i] {
			row = append(row, report.Pct(float64(accs[i][j].miss)/float64(accs[i][j].total)))
			sums[j].miss += accs[i][j].miss
			sums[j].total += accs[i][j].total
		}
		t.AddRow(row...)
	}
	row := []string{"TOTAL"}
	for j := range sums {
		row = append(row, report.Pct(float64(sums[j].miss)/float64(sums[j].total)))
	}
	t.AddRow(row...)
	t.Render(e.out)
	fmt.Fprintln(e.out, "(runs with CondNoise 1 are data-random: every predictor converges to the taken bias)")
	fmt.Fprintln(e.out)
}
