package main

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/tracecache"
)

// renderExperiments runs the named registry entries into w under the given
// worker count, engine selection and trace cache, at the given per-run
// event count.
func renderExperiments(w io.Writer, names []string, workers int, blocks bool, cache *tracecache.Cache, events int) {
	e := &env{
		out:    w,
		suite:  bench.Sized(events),
		cache:  cache,
		pool:   sched.New(workers),
		blocks: blocks,
	}
	for _, n := range names {
		for _, ex := range experiments {
			if ex.name == n {
				ex.run(e)
			}
		}
	}
}

// TestParallelDeterminism is the scheduler's core guarantee: output is
// byte-identical at every worker count, and every suite trace is generated
// exactly once per process regardless of how many analyses consume it.
func TestParallelDeterminism(t *testing.T) {
	const events = 3000
	names := []string{"fig6", "oracle"}
	suiteLen := uint64(len(bench.Sized(events)))

	var serial bytes.Buffer
	renderExperiments(&serial, names, 1, false, tracecache.New(0), events)
	if serial.Len() == 0 {
		t.Fatal("serial run produced no output")
	}

	for _, workers := range []int{2, 8} {
		cache := tracecache.New(0)
		var par bytes.Buffer
		renderExperiments(&par, names, workers, false, cache, events)
		if !bytes.Equal(serial.Bytes(), par.Bytes()) {
			t.Errorf("workers=%d: output differs from serial run\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, serial.String(), workers, par.String())
		}
		st := cache.Stats()
		if st.Generated != suiteLen {
			t.Errorf("workers=%d: generated %d traces, want %d (each suite run exactly once)",
				workers, st.Generated, suiteLen)
		}
		if st.Hits != suiteLen {
			t.Errorf("workers=%d: cache hits = %d, want %d (second analysis recalls every run)",
				workers, st.Hits, suiteLen)
		}
	}
}

// TestDisabledCacheMatchesSerial pins the -tracecache=false escape hatch to
// the same output.
func TestDisabledCacheMatchesSerial(t *testing.T) {
	const events = 2000
	names := []string{"fig6"}
	var cached, uncached bytes.Buffer
	renderExperiments(&cached, names, 1, false, tracecache.New(0), events)
	renderExperiments(&uncached, names, 4, false, tracecache.Disabled(), events)
	if !bytes.Equal(cached.Bytes(), uncached.Bytes()) {
		t.Error("disabled-cache parallel output differs from cached serial output")
	}
}

// TestBlockEngineMatchesRecordEngine pins the -blocks default to the record
// engine's bytes: the batched block path must render the exact same report
// at every worker count, through live and disabled caches alike.
func TestBlockEngineMatchesRecordEngine(t *testing.T) {
	const events = 2000
	names := allExperimentNames() // every predictor family crosses the block fast paths

	var records bytes.Buffer
	renderExperiments(&records, names, 1, false, tracecache.New(0), events)
	if records.Len() == 0 {
		t.Fatal("record-engine run produced no output")
	}

	for _, workers := range []int{1, 2, 8} {
		var blocks bytes.Buffer
		renderExperiments(&blocks, names, workers, true, tracecache.New(0), events)
		if !bytes.Equal(records.Bytes(), blocks.Bytes()) {
			t.Errorf("block engine at -j %d differs from record engine\n--- records ---\n%s\n--- blocks -j %d ---\n%s",
				workers, records.String(), workers, blocks.String())
		}
	}

	var uncached bytes.Buffer
	renderExperiments(&uncached, names, 1, true, tracecache.Disabled(), events)
	if !bytes.Equal(records.Bytes(), uncached.Bytes()) {
		t.Error("block engine with the disabled cache differs from record engine")
	}
}

// allExperimentNames returns every registry entry in canonical order.
func allExperimentNames() []string {
	names := make([]string, 0, len(experiments))
	for _, ex := range experiments {
		names = append(names, ex.name)
	}
	return names
}

// BenchmarkExperiments measures the full -all -ext grid. The serial-nocache
// sub-benchmark is the pre-cache baseline (one worker, record engine, every
// analysis regenerates every trace); parallel-j4-cached is the record
// engine's shipped default on a 4-core machine; blocks-j1-cached and
// blocks-j4-cached replay the same grid through the batched block engine —
// blocks-j1-cached against serial-nocache is the single-core speedup of
// this optimisation line. cmd/benchjson -experiments runs these at
// -benchtime=1x and derives the speedups recorded in BENCH_experiments.json.
// Cache traffic is attached as custom metrics so the snapshot proves single
// generation.
func BenchmarkExperiments(b *testing.B) {
	const events = 20000
	names := allExperimentNames()

	b.Run("serial-nocache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			renderExperiments(io.Discard, names, 1, false, tracecache.Disabled(), events)
		}
	})

	b.Run("parallel-j4-cached", func(b *testing.B) {
		var hits, generated uint64
		for i := 0; i < b.N; i++ {
			cache := tracecache.New(512 << 20)
			renderExperiments(io.Discard, names, 4, false, cache, events)
			st := cache.Stats()
			hits += st.Hits
			generated += st.Generated
		}
		b.ReportMetric(float64(hits)/float64(b.N), "cache-hits")
		b.ReportMetric(float64(generated)/float64(b.N), "cache-gen")
	})

	b.Run("blocks-j1-cached", func(b *testing.B) {
		var generated uint64
		for i := 0; i < b.N; i++ {
			cache := tracecache.New(512 << 20)
			renderExperiments(io.Discard, names, 1, true, cache, events)
			generated += cache.Stats().Generated
		}
		b.ReportMetric(float64(generated)/float64(b.N), "cache-gen")
	})

	b.Run("blocks-j4-cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			renderExperiments(io.Discard, names, 4, true, tracecache.New(512<<20), events)
		}
	})
}
