package main

import (
	"repro/internal/bench"
)

// experiment is one reproducible analysis: a stable name, the group that
// -all/-ext selects, a one-line description for -list, and the runner. The
// registry is the single canonical entry point into every table and figure
// this command can produce, so a new analysis is added by appending a row —
// not by threading another flag through main — and the static analyzers see
// one dispatch site. Runners receive the execution env (writer, suite,
// trace cache, worker pool) and must render only after their parallel cells
// have completed, in canonical suite order, so output is identical at every
// -j.
type experiment struct {
	name  string
	group string // "paper" (-all) or "extension" (-ext)
	doc   string
	run   func(e *env)
}

// experiments lists every analysis in canonical output order: the paper's
// own tables and figures first, then the extensions.
var experiments = []experiment{
	{"table1", "paper", "Table 1: dynamic benchmark characteristics", printTable1},
	{"fig1", "paper", "Figure 1 worked example (3rd-order conditional PPM)", printFigure1},
	{"fig6", "paper", "Figure 6: 7 predictors x all runs, 2K entries",
		func(e *env) {
			printMatrix(e, "Figure 6: misprediction ratios (%), 2K-entry predictors", bench.Figure6Predictors)
		}},
	{"fig7", "paper", "Figure 7: PPM variants",
		func(e *env) {
			printMatrix(e, "Figure 7: misprediction ratios (%), PPM variants", bench.Figure7Predictors)
		}},
	{"components", "paper", "Section 5: Markov component access/miss distribution", printComponents},
	{"oracle", "paper", "Section 5: oracle PIB-history analysis", printOracle},

	{"sweep", "extension", "PPM order/table-size sweep", printOrderSweep},
	{"pathlen", "extension", "TC/GAp path-length sensitivity", printPathLengthSweep},
	{"biu", "extension", "finite-BIU sensitivity", printBIUSweep},
	{"variants", "extension", "PPM design variants (future work)", printVariants},
	{"ipc", "extension", "IPC impact on a wide-issue machine", printIPC},
	{"tagged", "extension", "tagless vs tagged predictor versions", printTagged},
	{"cbt", "extension", "Case Block Table vs value availability", printCBT},
	{"filterpolicy", "extension", "strict vs leaky Cascade filter", printFilterPolicy},
	{"profile", "extension", "per-run branch population classification", printProfile},
	{"cond", "extension", "Section 3 substrate: conditional direction predictors", printCond},
	{"budget", "extension", "hardware budget accounting in entries and bits", printBudget},
	{"multi", "extension", "Section 4 alternative: multi-target majority-vote Markov states", printMulti},
	{"modern", "extension", "1998 vs modern: ITTAGE and Cascade-u at the paper's 2K-entry budget", printModern},
	{"warmstart", "extension", "snapshot/restore warm-start continuation (see -savestate/-warmstart)", printWarmstart},
}
