package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/tracecache"
)

// TestServedMatrixByteIdenticalToSerialRun pins the service's determinism
// contract: a fig6 job submitted to ppmserved's handler, streamed back as
// NDJSON and rendered with serve.RenderMatrix is byte-for-byte the output of
// a serial (-j 1) cmd/experiments run of the same cells. Raw counters travel
// the wire and both sides share the formatting code, so any divergence —
// float drift, ordering, column layout — fails here.
func TestServedMatrixByteIdenticalToSerialRun(t *testing.T) {
	const events = 2000

	var want bytes.Buffer
	renderExperiments(&want, []string{"fig6"}, 1, false, tracecache.New(0), events)

	srv := serve.New(serve.Config{MaxConcurrent: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(serve.JobSpec{Suite: "fig6", Events: events})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	stream, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	var cells []serve.CellResult
	state := ""
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev serve.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "cell":
			cells = append(cells, *ev.Cell)
		case "done":
			state = ev.State
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if state != serve.StateDone {
		t.Fatalf("job finished in state %q", state)
	}

	var got bytes.Buffer
	serve.RenderMatrix(&got, "Figure 6: misprediction ratios (%), 2K-entry predictors", cells)
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("served matrix differs from serial cmd/experiments output\n--- serial ---\n%s\n--- served ---\n%s",
			want.String(), got.String())
	}
}
