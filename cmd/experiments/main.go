// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic benchmark suite. Each analysis is a named
// entry in the experiment registry (registry.go); run one or more by flag or
// by positional name:
//
//	experiments -list          show every registered experiment and exit
//	experiments -fig6          regenerate Figure 6
//	experiments fig6 oracle    same experiments, selected positionally
//	experiments -all           every paper experiment (Tables 1, Figs 1/6/7,
//	                           component and oracle analyses)
//	experiments -ext           every extension experiment
//
// -events scales the per-run dispatch count; -run restricts to runs whose
// name contains the given substring. Output always follows the registry's
// canonical order regardless of how experiments were selected.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/condbr"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/predictor"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list every registered experiment and exit")
		all       = flag.Bool("all", false, "run every paper experiment")
		ext       = flag.Bool("ext", false, "run every extension experiment")
		events    = flag.Int("events", bench.DefaultEvents, "MT dispatch events per run")
		runFilter = flag.String("run", "", "restrict to runs whose name contains this substring")
	)
	selected := make(map[string]*bool, len(experiments))
	for _, e := range experiments {
		selected[e.name] = flag.Bool(e.name, false, e.group+": "+e.doc)
	}
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-14s %-10s %s\n", e.name, e.group, e.doc)
		}
		return
	}

	for _, name := range flag.Args() {
		sel, ok := selected[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (see -list)\n", name)
			os.Exit(2)
		}
		*sel = true
	}
	any := false
	for _, e := range experiments {
		if *all && e.group == "paper" {
			*selected[e.name] = true
		}
		if *ext && e.group == "extension" {
			*selected[e.name] = true
		}
		any = any || *selected[e.name]
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}

	suite := filterRuns(bench.Sized(*events), *runFilter)
	for _, e := range experiments {
		if *selected[e.name] {
			e.run(suite)
		}
	}
}

func filterRuns(runs []workload.Config, substr string) []workload.Config {
	if substr == "" {
		return runs
	}
	var out []workload.Config
	for _, r := range runs {
		if strings.Contains(r.String(), substr) {
			out = append(out, r)
		}
	}
	return out
}

func printTable1(suite []workload.Config) {
	t := report.NewTable("Table 1: dynamic benchmark characteristics",
		"benchmark", "input", "instr (M)", "MT jsr+jmp", "static MT", "cond", "returns")
	for _, cfg := range suite {
		var sum workload.Summary
		sum = discard(cfg)
		t.AddRowf(sum.Name, sum.Input,
			fmt.Sprintf("%.1f", float64(sum.Instructions)/1e6),
			sum.MTDynamic, sum.MTStatic, sum.CondDynamic, sum.RetsDynamic)
	}
	t.Render(os.Stdout)
	fmt.Println()
}

func discard(cfg workload.Config) workload.Summary {
	return cfg.Generate(func(trace.Record) {})
}

func printFigure1() {
	fmt.Println("Figure 1: 3rd-order Markov predictor over input 01010110101")
	p := condbr.NewPPM(3)
	seq := "01010110101"
	for _, ch := range seq {
		p.Predict()
		p.Update(ch == '1')
	}
	m := p.Model(3)
	z, o := m.Counts(0b101) // history bits: most recent in bit 0 -> pattern 101
	fmt.Printf("  state 101: next-bit counts 0:%d 1:%d\n", z, o)
	pred := p.Predict()
	bit := "0"
	if pred {
		bit = "1"
	}
	fmt.Printf("  PPM prediction after sequence: %s (paper: 0)\n\n", bit)
}

func printMatrix(title string, suite []workload.Config, preds func() []predictor.IndirectPredictor) {
	names := func() []string {
		var n []string
		for _, p := range preds() {
			n = append(n, p.Name())
		}
		return n
	}()
	t := report.NewTable(title, append([]string{"run"}, names...)...)
	perPred := make(map[string][]stats.Counters)
	for _, cfg := range suite {
		recs, _ := cfg.Records()
		counters := sim.Run(recs, preds()...)
		row := []string{cfg.String()}
		for _, c := range counters {
			row = append(row, report.Pct(c.MispredictionRatio()))
			perPred[c.Predictor] = append(perPred[c.Predictor], c)
		}
		t.AddRow(row...)
	}
	avg := []string{"MEAN"}
	for _, n := range names {
		avg = append(avg, report.Pct(stats.MeanRatio(perPred[n])))
	}
	t.AddRow(avg...)
	t.Render(os.Stdout)
	fmt.Println()
}

func printComponents(suite []workload.Config) {
	fmt.Println("Markov component access distribution (PPM-hyb)")
	for _, cfg := range suite {
		recs, _ := cfg.Records()
		p := core.PaperHyb()
		sim.Run(recs, p)
		st := p.Stats()
		var total, topAcc, topMiss, totalMiss uint64
		for i, a := range st.Accesses {
			total += a
			totalMiss += st.Misses[i]
		}
		topAcc = st.Accesses[p.Order()]
		topMiss = st.Misses[p.Order()]
		if total == 0 {
			continue
		}
		missShare := 0.0
		if totalMiss > 0 {
			missShare = 100 * float64(topMiss) / float64(totalMiss)
		}
		fmt.Printf("  %-12s highest-order accesses: %5.1f%%  misses: %5.1f%%\n",
			cfg.String(), 100*float64(topAcc)/float64(total), missShare)
	}
	fmt.Println()
}

func printOracle(suite []workload.Config) {
	fmt.Println("Oracle with complete PIB path history, path length 8")
	for _, cfg := range suite {
		recs, _ := cfg.Records()
		o := oracle.New(8)
		counters := sim.Run(recs, o)
		fmt.Printf("  %-12s accuracy: %.2f%% (contexts: %d)\n",
			cfg.String(), 100*counters[0].Accuracy(), o.Contexts())
	}
	fmt.Println()
}
