// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic benchmark suite. Each analysis is a named
// entry in the experiment registry (registry.go); run one or more by flag or
// by positional name:
//
//	experiments -list          show every registered experiment and exit
//	experiments -fig6          regenerate Figure 6
//	experiments fig6 oracle    same experiments, selected positionally
//	experiments -all           every paper experiment (Tables 1, Figs 1/6/7,
//	                           component and oracle analyses)
//	experiments -ext           every extension experiment
//
// -events scales the per-run dispatch count; -run restricts to runs whose
// name contains the given substring. Output always follows the registry's
// canonical order regardless of how experiments were selected.
//
// The grid is evaluated by a deterministic parallel runner: -j sets the
// worker count (default GOMAXPROCS; -j 1 is the exact serial path), every
// (run × predictor-set) cell simulates on a private engine, and each suite
// trace is generated at most once per process through the shared trace
// cache (-cachemb bounds its memory, -tracecache=false disables it).
// Output is byte-identical at every -j.
//
// By default cells replay through the batched block engine: traces are
// pre-decoded once into columnar blocks (cached alongside the records) and
// each predictor consumes a whole block per virtual call, with index lanes
// letting most predictors skip straight to the records they observe.
// -blocks=false falls back to the record-at-a-time engine; the two paths
// are byte-identical (enforced by the ppmcheck blocks-vs-records suite and
// the engine-identity test), so the flag only changes wall-clock time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/condbr"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/predictor"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// env is the execution context an experiment runs in: where to render, the
// suite to evaluate, the shared trace cache, and the worker pool. Tests
// build their own env around a buffer to compare outputs across -j values.
type env struct {
	out   io.Writer
	suite []workload.Config
	cache *tracecache.Cache
	pool  *sched.Pool
	// blocks selects the batched block engine: cells replay pre-decoded
	// columnar blocks via sched.SimulateBlocks instead of record slices.
	// Results are identical either way; only wall-clock differs.
	blocks bool
	// savestate/warmstart switch the warmstart experiment into its
	// cross-process modes: write a mid-trace PPM-hyb snapshot to a file, or
	// restore one and prove byte-identical continuation (see warmstart.go).
	savestate string
	warmstart string
}

// simulate runs every suite config through a fresh instance of the
// predictor set, sharding cells across the pool; results arrive in suite
// order.
func (e *env) simulate(build func() []predictor.IndirectPredictor) []sched.Result {
	if e.blocks {
		return e.pool.SimulateBlocks(e.cache, e.suite, build)
	}
	return e.pool.Simulate(e.cache, e.suite, build)
}

func main() {
	var (
		list       = flag.Bool("list", false, "list every registered experiment and exit")
		all        = flag.Bool("all", false, "run every paper experiment")
		ext        = flag.Bool("ext", false, "run every extension experiment")
		events     = flag.Int("events", bench.DefaultEvents, "MT dispatch events per run")
		runFilter  = flag.String("run", "", "restrict to runs whose name contains this substring")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "simulation workers (1 = exact serial path)")
		cacheMB    = flag.Int("cachemb", 512, "trace cache budget in MiB (0 = unlimited)")
		useCache   = flag.Bool("tracecache", true, "cache generated traces; false regenerates per analysis (the pre-cache baseline)")
		useBlocks  = flag.Bool("blocks", true, "simulate via the batched block engine; false uses the record-at-a-time engine (identical output)")
		cacheStats = flag.Bool("cachestats", false, "print trace cache statistics to stderr after the run")
		savestate  = flag.String("savestate", "", "warmstart experiment: write a mid-trace PPM-hyb snapshot to this file")
		warmstart  = flag.String("warmstart", "", "warmstart experiment: restore this snapshot and verify byte-identical continuation")
	)
	selected := make(map[string]*bool, len(experiments))
	for _, ex := range experiments {
		if flag.Lookup(ex.name) != nil {
			// The experiment shares its name with a mode flag (warmstart's
			// -warmstart FILE): selection happens below, via that flag or
			// positionally.
			selected[ex.name] = new(bool)
			continue
		}
		selected[ex.name] = flag.Bool(ex.name, false, ex.group+": "+ex.doc)
	}
	flag.Parse()
	if *savestate != "" || *warmstart != "" {
		*selected["warmstart"] = true
	}

	if *list {
		for _, ex := range experiments {
			fmt.Printf("  %-14s %-10s %s\n", ex.name, ex.group, ex.doc)
		}
		return
	}

	for _, name := range flag.Args() {
		sel, ok := selected[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (see -list)\n", name)
			os.Exit(2)
		}
		*sel = true
	}
	any := false
	for _, ex := range experiments {
		if *all && ex.group == "paper" {
			*selected[ex.name] = true
		}
		if *ext && ex.group == "extension" {
			*selected[ex.name] = true
		}
		any = any || *selected[ex.name]
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}

	cache := tracecache.New(int64(*cacheMB) << 20)
	if !*useCache {
		cache = tracecache.Disabled()
	}
	e := &env{
		out:       os.Stdout,
		suite:     filterRuns(bench.Sized(*events), *runFilter),
		cache:     cache,
		pool:      sched.New(*jobs),
		blocks:    *useBlocks,
		savestate: *savestate,
		warmstart: *warmstart,
	}
	for _, ex := range experiments {
		if *selected[ex.name] {
			ex.run(e)
		}
	}
	if *cacheStats {
		fmt.Fprintln(os.Stderr, "tracecache:", cache.Stats())
	}
}

func filterRuns(runs []workload.Config, substr string) []workload.Config {
	if substr == "" {
		return runs
	}
	var out []workload.Config
	for _, r := range runs {
		if strings.Contains(r.String(), substr) {
			out = append(out, r)
		}
	}
	return out
}

func printTable1(e *env) {
	// One parallel pass generates (or recalls) every run; rendering then
	// reads the captured summaries in suite order.
	sums := make([]workload.Summary, len(e.suite))
	e.pool.Map(len(e.suite), func(i int) {
		_, sums[i] = e.cache.Get(e.suite[i])
	})
	t := report.NewTable("Table 1: dynamic benchmark characteristics",
		"benchmark", "input", "instr (M)", "MT jsr+jmp", "static MT", "cond", "returns")
	for _, sum := range sums {
		t.AddRowf(sum.Name, sum.Input,
			fmt.Sprintf("%.1f", float64(sum.Instructions)/1e6),
			sum.MTDynamic, sum.MTStatic, sum.CondDynamic, sum.RetsDynamic)
	}
	t.Render(e.out)
	fmt.Fprintln(e.out)
}

func printFigure1(e *env) {
	fmt.Fprintln(e.out, "Figure 1: 3rd-order Markov predictor over input 01010110101")
	p := condbr.NewPPM(3)
	seq := "01010110101"
	for _, ch := range seq {
		p.Predict()
		p.Update(ch == '1')
	}
	m := p.Model(3)
	z, o := m.Counts(0b101) // history bits: most recent in bit 0 -> pattern 101
	fmt.Fprintf(e.out, "  state 101: next-bit counts 0:%d 1:%d\n", z, o)
	pred := p.Predict()
	bit := "0"
	if pred {
		bit = "1"
	}
	fmt.Fprintf(e.out, "  PPM prediction after sequence: %s (paper: 0)\n\n", bit)
}

func printMatrix(e *env, title string, preds func() []predictor.IndirectPredictor) {
	names := func() []string {
		var n []string
		for _, p := range preds() {
			n = append(n, p.Name())
		}
		return n
	}()
	t := report.NewTable(title, append([]string{"run"}, names...)...)
	perPred := make(map[string][]stats.Counters)
	for _, res := range e.simulate(preds) {
		row := []string{res.Config.String()}
		for _, c := range res.Counters {
			row = append(row, report.Pct(c.MispredictionRatio()))
			perPred[c.Predictor] = append(perPred[c.Predictor], c)
		}
		t.AddRow(row...)
	}
	avg := []string{"MEAN"}
	for _, n := range names {
		avg = append(avg, report.Pct(stats.MeanRatio(perPred[n])))
	}
	t.AddRow(avg...)
	t.Render(e.out)
	fmt.Fprintln(e.out)
}

func printComponents(e *env) {
	fmt.Fprintln(e.out, "Markov component access distribution (PPM-hyb)")
	results := e.simulate(func() []predictor.IndirectPredictor {
		return []predictor.IndirectPredictor{core.PaperHyb()}
	})
	for _, res := range results {
		p := res.Preds[0].(*core.PPM)
		st := p.Stats()
		var total, topAcc, topMiss, totalMiss uint64
		for i, a := range st.Accesses {
			total += a
			totalMiss += st.Misses[i]
		}
		topAcc = st.Accesses[p.Order()]
		topMiss = st.Misses[p.Order()]
		if total == 0 {
			continue
		}
		missShare := 0.0
		if totalMiss > 0 {
			missShare = 100 * float64(topMiss) / float64(totalMiss)
		}
		fmt.Fprintf(e.out, "  %-12s highest-order accesses: %5.1f%%  misses: %5.1f%%\n",
			res.Config.String(), 100*float64(topAcc)/float64(total), missShare)
	}
	fmt.Fprintln(e.out)
}

func printOracle(e *env) {
	fmt.Fprintln(e.out, "Oracle with complete PIB path history, path length 8")
	results := e.simulate(func() []predictor.IndirectPredictor {
		return []predictor.IndirectPredictor{oracle.New(8)}
	})
	for _, res := range results {
		o := res.Preds[0].(*oracle.Oracle)
		fmt.Fprintf(e.out, "  %-12s accuracy: %.2f%% (contexts: %d)\n",
			res.Config.String(), 100*res.Counters[0].Accuracy(), o.Contexts())
	}
	fmt.Fprintln(e.out)
}
