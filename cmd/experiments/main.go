// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic benchmark suite:
//
//	experiments -table1        Table 1 (dynamic benchmark characteristics)
//	experiments -fig1          Figure 1 worked example (3rd-order Markov)
//	experiments -fig6          Figure 6 (7 predictors x all runs, 2K entries)
//	experiments -fig7          Figure 7 (3 PPM variants)
//	experiments -components    Section 5 Markov component access/miss split
//	experiments -oracle        Section 5 oracle analysis (photon, path len 8)
//	experiments -all           everything above
//
// -events scales the per-run dispatch count; -run restricts to runs whose
// name contains the given substring.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/condbr"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/predictor"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "regenerate Table 1")
		fig1       = flag.Bool("fig1", false, "regenerate the Figure 1 worked example")
		fig6       = flag.Bool("fig6", false, "regenerate Figure 6")
		fig7       = flag.Bool("fig7", false, "regenerate Figure 7")
		components = flag.Bool("components", false, "Markov component access/miss distribution")
		oracleF    = flag.Bool("oracle", false, "oracle PIB-history analysis")
		sweep      = flag.Bool("sweep", false, "extension: PPM order/table-size sweep")
		pathlen    = flag.Bool("pathlen", false, "extension: TC/GAp path-length sensitivity")
		biu        = flag.Bool("biu", false, "extension: finite-BIU sensitivity")
		variants   = flag.Bool("variants", false, "extension: PPM design variants (future work)")
		ipc        = flag.Bool("ipc", false, "motivation: IPC impact on a wide-issue machine")
		tagged     = flag.Bool("tagged", false, "extension: tagless vs tagged predictor versions")
		cbtF       = flag.Bool("cbt", false, "related work: Case Block Table vs value availability")
		filterPol  = flag.Bool("filterpolicy", false, "extension: strict vs leaky Cascade filter")
		profile    = flag.Bool("profile", false, "classify each run's branch population (mono/low-entropy/polymorphic)")
		cond       = flag.Bool("cond", false, "Section 3 substrate: conditional direction predictors")
		budget     = flag.Bool("budget", false, "hardware budget accounting in entries and bits")
		multi      = flag.Bool("multi", false, "Section 4 alternative: multi-target majority-vote Markov states")
		all        = flag.Bool("all", false, "run every experiment")
		ext        = flag.Bool("ext", false, "run every extension experiment")
		events     = flag.Int("events", bench.DefaultEvents, "MT dispatch events per run")
		runFilter  = flag.String("run", "", "restrict to runs whose name contains this substring")
	)
	flag.Parse()

	if *all {
		*table1, *fig1, *fig6, *fig7, *components, *oracleF = true, true, true, true, true, true
	}
	if *ext {
		*sweep, *pathlen, *biu, *variants = true, true, true, true
		*ipc, *tagged, *cbtF, *filterPol = true, true, true, true
		*profile, *cond, *budget, *multi = true, true, true, true
	}
	if !(*table1 || *fig1 || *fig6 || *fig7 || *components || *oracleF ||
		*sweep || *pathlen || *biu || *variants ||
		*ipc || *tagged || *cbtF || *filterPol || *profile || *cond ||
		*budget || *multi) {
		flag.Usage()
		os.Exit(2)
	}

	suite := filterRuns(bench.Sized(*events), *runFilter)

	if *table1 {
		printTable1(suite)
	}
	if *fig1 {
		printFigure1()
	}
	if *fig6 {
		printMatrix("Figure 6: misprediction ratios (%), 2K-entry predictors", suite, bench.Figure6Predictors)
	}
	if *fig7 {
		printMatrix("Figure 7: misprediction ratios (%), PPM variants", suite, bench.Figure7Predictors)
	}
	if *components {
		printComponents(suite)
	}
	if *oracleF {
		printOracle(suite)
	}
	if *sweep {
		printOrderSweep(suite)
	}
	if *pathlen {
		printPathLengthSweep(suite)
	}
	if *biu {
		printBIUSweep(suite)
	}
	if *variants {
		printVariants(suite)
	}
	if *ipc {
		printIPC(suite)
	}
	if *tagged {
		printTagged(suite)
	}
	if *cbtF {
		printCBT(suite)
	}
	if *filterPol {
		printFilterPolicy(suite)
	}
	if *profile {
		printProfile(suite)
	}
	if *cond {
		printCond(suite)
	}
	if *budget {
		printBudget()
	}
	if *multi {
		printMulti(suite)
	}
}

func filterRuns(runs []workload.Config, substr string) []workload.Config {
	if substr == "" {
		return runs
	}
	var out []workload.Config
	for _, r := range runs {
		if strings.Contains(r.String(), substr) {
			out = append(out, r)
		}
	}
	return out
}

func printTable1(suite []workload.Config) {
	t := report.NewTable("Table 1: dynamic benchmark characteristics",
		"benchmark", "input", "instr (M)", "MT jsr+jmp", "static MT", "cond", "returns")
	for _, cfg := range suite {
		var sum workload.Summary
		sum = discard(cfg)
		t.AddRowf(sum.Name, sum.Input,
			fmt.Sprintf("%.1f", float64(sum.Instructions)/1e6),
			sum.MTDynamic, sum.MTStatic, sum.CondDynamic, sum.RetsDynamic)
	}
	t.Render(os.Stdout)
	fmt.Println()
}

func discard(cfg workload.Config) workload.Summary {
	return cfg.Generate(func(trace.Record) {})
}

func printFigure1() {
	fmt.Println("Figure 1: 3rd-order Markov predictor over input 01010110101")
	p := condbr.NewPPM(3)
	seq := "01010110101"
	for _, ch := range seq {
		p.Predict()
		p.Update(ch == '1')
	}
	m := p.Model(3)
	z, o := m.Counts(0b101) // history bits: most recent in bit 0 -> pattern 101
	fmt.Printf("  state 101: next-bit counts 0:%d 1:%d\n", z, o)
	pred := p.Predict()
	bit := "0"
	if pred {
		bit = "1"
	}
	fmt.Printf("  PPM prediction after sequence: %s (paper: 0)\n\n", bit)
}

func printMatrix(title string, suite []workload.Config, preds func() []predictor.IndirectPredictor) {
	names := func() []string {
		var n []string
		for _, p := range preds() {
			n = append(n, p.Name())
		}
		return n
	}()
	t := report.NewTable(title, append([]string{"run"}, names...)...)
	perPred := make(map[string][]stats.Counters)
	for _, cfg := range suite {
		recs, _ := cfg.Records()
		counters := sim.Run(recs, preds()...)
		row := []string{cfg.String()}
		for _, c := range counters {
			row = append(row, report.Pct(c.MispredictionRatio()))
			perPred[c.Predictor] = append(perPred[c.Predictor], c)
		}
		t.AddRow(row...)
	}
	avg := []string{"MEAN"}
	for _, n := range names {
		avg = append(avg, report.Pct(stats.MeanRatio(perPred[n])))
	}
	t.AddRow(avg...)
	t.Render(os.Stdout)
	fmt.Println()
}

func printComponents(suite []workload.Config) {
	fmt.Println("Markov component access distribution (PPM-hyb)")
	for _, cfg := range suite {
		recs, _ := cfg.Records()
		p := core.PaperHyb()
		sim.Run(recs, p)
		st := p.Stats()
		var total, topAcc, topMiss, totalMiss uint64
		for i, a := range st.Accesses {
			total += a
			totalMiss += st.Misses[i]
		}
		topAcc = st.Accesses[p.Order()]
		topMiss = st.Misses[p.Order()]
		if total == 0 {
			continue
		}
		missShare := 0.0
		if totalMiss > 0 {
			missShare = 100 * float64(topMiss) / float64(totalMiss)
		}
		fmt.Printf("  %-12s highest-order accesses: %5.1f%%  misses: %5.1f%%\n",
			cfg.String(), 100*float64(topAcc)/float64(total), missShare)
	}
	fmt.Println()
}

func printOracle(suite []workload.Config) {
	fmt.Println("Oracle with complete PIB path history, path length 8")
	for _, cfg := range suite {
		recs, _ := cfg.Records()
		o := oracle.New(8)
		counters := sim.Run(recs, o)
		fmt.Printf("  %-12s accuracy: %.2f%% (contexts: %d)\n",
			cfg.String(), 100*counters[0].Accuracy(), o.Contexts())
	}
	fmt.Println()
}
