// Command ppmctl is the client for ppmserved.
//
//	ppmctl -server http://127.0.0.1:8100 submit -suite fig6 -workloads troff.ped,eqn -events 2000 -wait
//	ppmctl submit -trace run.ibt2 -suite fig6 -label mytrace
//	ppmctl status j-1
//	ppmctl results j-1 -render -title "Figure 6: misprediction ratios (%), 2K-entry predictors"
//	ppmctl cancel j-1
//	ppmctl bench -c 4 -n 64 -workloads eqn -events 2000
//	ppmctl session create -predictor PPM-hyb
//	ppmctl session predict -workload eqn -events 1000 s-1
//	ppmctl bench -sessions 200 -c 8 -workloads eqn -events 1000
//
// submit posts a job spec (or streams an IBT2 trace file) and prints the
// created job's status JSON; with -wait it follows the NDJSON result stream
// to completion. results replays/follows a job's stream; -render collects
// the cells and prints the same misprediction matrix cmd/experiments
// renders, byte-identical for identical cells. bench is a closed-loop load
// generator: -c concurrent workers each submit a job and stream it to
// completion, 429 responses honour Retry-After and retry, and the run
// reports achieved QPS, error/shed counts and p50/p99 job latency.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage: ppmctl [-server URL] <command> [flags]

commands:
  submit   submit a suite job (or -trace FILE upload) and print its status
  status   print a job's status JSON
  results  stream a job's NDJSON results (-render for the matrix view)
  cancel   cancel a job
  stats    print the server's /statsz counters
  session  live prediction sessions (create/list/status/close/predict/state/restore)
  bench    closed-loop load generator against the server (-sessions N for live sessions)`)
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppmctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8100", "ppmserved base URL")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return usage(stderr)
	}
	c := &client{base: strings.TrimRight(*server, "/")}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "submit":
		return c.submit(rest, stdout, stderr)
	case "status":
		return c.status(rest, stdout, stderr)
	case "results":
		return c.results(rest, stdout, stderr)
	case "cancel":
		return c.cancel(rest, stdout, stderr)
	case "stats":
		return c.stats(stdout, stderr)
	case "session":
		return c.session(rest, stdout, stderr)
	case "bench":
		return c.bench(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "ppmctl: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

type client struct {
	base string
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "ppmctl:", err)
	return 1
}

// errorBody surfaces the server's {"error": ...} payload.
func errorBody(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	if body.Error == "" {
		body.Error = resp.Status
	}
	return fmt.Errorf("server: %s (HTTP %d)", body.Error, resp.StatusCode)
}

// specFlags registers the job-spec flags shared by submit and bench.
func specFlags(fs *flag.FlagSet) (suite, workloads, predictors *string, events *int) {
	suite = fs.String("suite", "", `predictor suite: "fig6" (default) or "fig7"`)
	workloads = fs.String("workloads", "", "comma-separated run names (empty = full suite)")
	predictors = fs.String("predictors", "", "comma-separated predictor labels instead of a suite")
	events = fs.Int("events", 0, "MT dispatch events per run (0 = server default)")
	return
}

func buildSpec(suite, workloads, predictors string, events int) serve.JobSpec {
	spec := serve.JobSpec{Suite: suite, Events: events}
	if workloads != "" {
		spec.Workloads = strings.Split(workloads, ",")
	}
	if predictors != "" {
		spec.Predictors = strings.Split(predictors, ",")
	}
	return spec
}

// postJob submits a suite job spec and decodes the created status.
func (c *client) postJob(spec serve.JobSpec) (serve.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobStatus{}, err
	}
	resp, err := http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return serve.JobStatus{}, errorBody(resp)
	}
	var st serve.JobStatus
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// stream follows a job's NDJSON results, copying each line to raw (when
// non-nil) and collecting cells; it returns the terminal event.
func (c *client) stream(id string, raw io.Writer) ([]serve.CellResult, serve.Event, error) {
	resp, err := http.Get(c.base + "/v1/jobs/" + id + "/results")
	if err != nil {
		return nil, serve.Event{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, serve.Event{}, errorBody(resp)
	}
	var cells []serve.CellResult
	var done serve.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if raw != nil {
			fmt.Fprintln(raw, sc.Text())
		}
		var ev serve.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, serve.Event{}, fmt.Errorf("bad stream line: %w", err)
		}
		switch ev.Type {
		case "cell":
			cells = append(cells, *ev.Cell)
		case "done":
			done = ev
		}
	}
	if err := sc.Err(); err != nil {
		return nil, serve.Event{}, err
	}
	if done.Type != "done" {
		return nil, serve.Event{}, fmt.Errorf("job %s: stream ended without a done event", id)
	}
	return cells, done, nil
}

func (c *client) submit(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppmctl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	suite, workloads, predictors, events := specFlags(fs)
	traceFile := fs.String("trace", "", "upload this IBT2 trace file instead of naming workloads")
	label := fs.String("label", "", "row label for an uploaded trace")
	wait := fs.Bool("wait", false, "follow the result stream to completion")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *traceFile != "" {
		return c.upload(*traceFile, *suite, *predictors, *label, stdout, stderr)
	}
	st, err := c.postJob(buildSpec(*suite, *workloads, *predictors, *events))
	if err != nil {
		return fail(stderr, err)
	}
	printJSON(stdout, st)
	if !*wait {
		return 0
	}
	_, done, err := c.stream(st.ID, stdout)
	if err != nil {
		return fail(stderr, err)
	}
	if done.State != serve.StateDone {
		return fail(stderr, fmt.Errorf("job %s finished %s: %s", st.ID, done.State, done.Error))
	}
	return 0
}

// upload streams a trace file to the server; the response is already the
// job's full NDJSON result.
func (c *client) upload(path, suite, predictors, label string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		return fail(stderr, err)
	}
	defer f.Close() //lint:closeerr read-only trace input; Close cannot lose data
	url := c.base + "/v1/jobs?suite=" + suite
	for _, p := range strings.Split(predictors, ",") {
		if p != "" {
			url += "&predictor=" + p
		}
	}
	if label != "" {
		url += "&label=" + label
	}
	resp, err := http.Post(url, "application/x-ibt2", f)
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(stderr, errorBody(resp))
	}
	if _, err := io.Copy(stdout, resp.Body); err != nil {
		return fail(stderr, err)
	}
	return 0
}

func (c *client) status(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: ppmctl status <job-id>")
		return 2
	}
	resp, err := http.Get(c.base + "/v1/jobs/" + args[0])
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(stderr, errorBody(resp))
	}
	_, _ = io.Copy(stdout, resp.Body)
	return 0
}

func (c *client) results(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppmctl results", flag.ContinueOnError)
	fs.SetOutput(stderr)
	render := fs.Bool("render", false, "render the cells as a misprediction matrix instead of raw NDJSON")
	title := fs.String("title", "results", "matrix title for -render")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ppmctl results [-render [-title T]] <job-id>")
		return 2
	}
	raw := io.Writer(stdout)
	if *render {
		raw = nil
	}
	cells, done, err := c.stream(fs.Arg(0), raw)
	if err != nil {
		return fail(stderr, err)
	}
	if *render {
		serve.RenderMatrix(stdout, *title, cells)
	}
	if done.State != serve.StateDone {
		return fail(stderr, fmt.Errorf("job %s finished %s: %s", fs.Arg(0), done.State, done.Error))
	}
	return 0
}

func (c *client) cancel(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: ppmctl cancel <job-id>")
		return 2
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/jobs/"+args[0], nil)
	if err != nil {
		return fail(stderr, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(stderr, errorBody(resp))
	}
	_, _ = io.Copy(stdout, resp.Body)
	return 0
}

func (c *client) stats(stdout, stderr io.Writer) int {
	resp, err := http.Get(c.base + "/statsz")
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(stdout, resp.Body)
	return 0
}

// bench drives the server closed-loop: each of -c workers repeatedly
// submits a job and streams it to completion until -n jobs have finished.
// 429 responses honour Retry-After and retry the same job; anything else is
// an error. Latency is per job, submit to done event.
func (c *client) bench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppmctl bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	suite, workloads, predictors, events := specFlags(fs)
	conc := fs.Int("c", 4, "concurrent closed-loop workers")
	total := fs.Int("n", 32, "total jobs to run")
	sessions := fs.Int("sessions", 0, "drive N live prediction sessions instead of jobs")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sessions > 0 {
		// Live-session mode: -workloads names the generator run (first
		// entry), -predictors the session's family (first entry).
		run := strings.Split(*workloads, ",")[0]
		pred := strings.Split(*predictors, ",")[0]
		return c.benchSessions(*sessions, *conc, pred, run, *events, stdout, stderr)
	}
	spec := buildSpec(*suite, *workloads, *predictors, *events)

	var (
		//lint:shared closed-loop bench counters: per-job increments are dwarfed by HTTP round-trips
		next, completed, errors, shed atomic.Int64
		mu                            sync.Mutex
		p50                           = serve.NewP2(0.50)
		p99                           = serve.NewP2(0.99)
	)
	start := time.Now() //lint:wallclock load generator measures real elapsed time
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(*total) {
				t0 := time.Now() //lint:wallclock per-job latency sample
				if err := c.benchOne(spec, &shed); err != nil {
					errors.Add(1)
					fmt.Fprintln(stderr, "ppmctl bench:", err)
					continue
				}
				ms := float64(time.Since(t0)) / float64(time.Millisecond) //lint:wallclock per-job latency sample
				mu.Lock()
				p50.Observe(ms)
				p99.Observe(ms)
				mu.Unlock()
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) //lint:wallclock load generator measures real elapsed time

	done := completed.Load()
	qps := float64(done) / elapsed.Seconds()
	errRate := float64(errors.Load()) / float64(*total)
	fmt.Fprintf(stdout, "jobs:       %d/%d completed, %d errors, %d sheds retried\n",
		done, *total, errors.Load(), shed.Load())
	fmt.Fprintf(stdout, "elapsed:    %.2fs\n", elapsed.Seconds())
	fmt.Fprintf(stdout, "throughput: %.1f jobs/s\n", qps)
	fmt.Fprintf(stdout, "error rate: %.1f%%\n", 100*errRate)
	fmt.Fprintf(stdout, "latency:    p50 %.1fms  p99 %.1fms\n", p50.Quantile(), p99.Quantile())
	if errors.Load() > 0 {
		return 1
	}
	return 0
}

// benchOne runs one job to completion, retrying sheds after the server's
// advisory delay.
func (c *client) benchOne(spec serve.JobSpec, shed *atomic.Int64) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	for {
		resp, err := http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			delay := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				delay = time.Duration(s) * time.Second
			}
			resp.Body.Close()
			shed.Add(1)
			time.Sleep(delay)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			defer resp.Body.Close()
			return errorBody(resp)
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		_, done, err := c.stream(st.ID, nil)
		if err != nil {
			return err
		}
		if done.State != serve.StateDone {
			return fmt.Errorf("job %s finished %s: %s", st.ID, done.State, done.Error)
		}
		return nil
	}
}

func printJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
