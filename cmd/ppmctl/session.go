package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/trace"
)

// session dispatches the live-session subcommands. A session holds one
// predictor's mutable state open on the server; predict streams records up
// and predictions back while the tables train in place, and state
// download/upload moves the serialized predictor between sessions (or
// processes) with byte-identical continuation.
func (c *client) session(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, `usage: ppmctl session <create|list|status|close|predict|state|restore> ...

  create  [-predictor NAME]                  create a live session
  list                                       list live sessions
  status  <id>                               print one session's status JSON
  close   <id>                               close a session
  predict [-trace FILE | -workload RUN -events N] <id>
                                             stream records, print NDJSON predictions
  state   <id> [-o FILE]                     download the state snapshot
  restore <id> <snapshot-file>               warm-start the session from a snapshot`)
		return 2
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "create":
		return c.sessionCreate(rest, stdout, stderr)
	case "list":
		return c.getJSON("/v1/sessions", stdout, stderr)
	case "status":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "usage: ppmctl session status <id>")
			return 2
		}
		return c.getJSON("/v1/sessions/"+rest[0], stdout, stderr)
	case "close":
		return c.sessionClose(rest, stdout, stderr)
	case "predict":
		return c.sessionPredict(rest, stdout, stderr)
	case "state":
		return c.sessionState(rest, stdout, stderr)
	case "restore":
		return c.sessionRestore(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "ppmctl session: unknown subcommand %q\n", sub)
		return 2
	}
}

func (c *client) getJSON(path string, stdout, stderr io.Writer) int {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(stderr, errorBody(resp))
	}
	_, _ = io.Copy(stdout, resp.Body)
	return 0
}

func (c *client) sessionCreate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppmctl session create", flag.ContinueOnError)
	fs.SetOutput(stderr)
	predictor := fs.String("predictor", "", "bench predictor label (empty = server default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	st, err := c.createSession(*predictor, nil)
	if err != nil {
		return fail(stderr, err)
	}
	printJSON(stdout, st)
	return 0
}

// createSession posts a session spec; shed, when non-nil, makes 429
// responses honour Retry-After and retry (the bench closed loop).
func (c *client) createSession(predictor string, shed *atomic.Int64) (serve.SessionStatus, error) {
	body, err := json.Marshal(serve.SessionSpec{Predictor: predictor})
	if err != nil {
		return serve.SessionStatus{}, err
	}
	for {
		resp, err := http.Post(c.base+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			return serve.SessionStatus{}, err
		}
		if shed != nil && resp.StatusCode == http.StatusTooManyRequests {
			delay := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				delay = time.Duration(s) * time.Second
			}
			resp.Body.Close()
			shed.Add(1)
			time.Sleep(delay)
			continue
		}
		if resp.StatusCode != http.StatusCreated {
			defer resp.Body.Close()
			return serve.SessionStatus{}, errorBody(resp)
		}
		var st serve.SessionStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		return st, err
	}
}

func (c *client) sessionClose(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: ppmctl session close <id>")
		return 2
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/sessions/"+args[0], nil)
	if err != nil {
		return fail(stderr, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(stderr, errorBody(resp))
	}
	_, _ = io.Copy(stdout, resp.Body)
	return 0
}

// encodeWorkload generates a bench run's records client-side and encodes
// them as an IBT2 body, so a predict stream needs no trace file on disk.
func encodeWorkload(name string, events int) ([]byte, error) {
	cfg, ok := bench.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	if events > 0 {
		cfg.Events = events
	}
	recs, _ := cfg.Records()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (c *client) sessionPredict(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppmctl session predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	traceFile := fs.String("trace", "", "stream this IBT2 trace file")
	workload := fs.String("workload", "", "generate and stream this bench run instead of a file")
	events := fs.Int("events", 0, "MT dispatch events for -workload (0 = run default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 || (*traceFile == "") == (*workload == "") {
		fmt.Fprintln(stderr, "usage: ppmctl session predict (-trace FILE | -workload RUN [-events N]) <id>")
		return 2
	}
	var body io.Reader
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return fail(stderr, err)
		}
		defer f.Close() //lint:closeerr read-only trace input; Close cannot lose data
		body = f
	} else {
		data, err := encodeWorkload(*workload, *events)
		if err != nil {
			return fail(stderr, err)
		}
		body = bytes.NewReader(data)
	}

	resp, err := http.Post(c.base+"/v1/sessions/"+fs.Arg(0)+"/predict", "application/x-ibt2", body)
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(stderr, errorBody(resp))
	}
	// Relay the NDJSON stream verbatim, but fail on a typed error line so
	// scripts can trust the exit code.
	code := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fmt.Fprintln(stdout, sc.Text())
		var ev serve.PredictEvent
		if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Type == "error" {
			fmt.Fprintln(stderr, "ppmctl: predict stream error:", ev.Error)
			code = 1
		}
	}
	if err := sc.Err(); err != nil {
		return fail(stderr, err)
	}
	return code
}

func (c *client) sessionState(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppmctl session state", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the snapshot to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ppmctl session state [-o FILE] <id>")
		return 2
	}
	resp, err := http.Get(c.base + "/v1/sessions/" + fs.Arg(0) + "/state")
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(stderr, errorBody(resp))
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(stderr, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "ppmctl:", err)
			}
		}()
		w = f
	}
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fail(stderr, err)
	}
	return 0
}

func (c *client) sessionRestore(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "usage: ppmctl session restore <id> <snapshot-file>")
		return 2
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		return fail(stderr, err)
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/v1/sessions/"+args[0]+"/state",
		bytes.NewReader(data))
	if err != nil {
		return fail(stderr, err)
	}
	req.Header.Set("Content-Type", "application/x-ppm-state")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fail(stderr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(stderr, errorBody(resp))
	}
	_, _ = io.Copy(stdout, resp.Body)
	return 0
}

// benchSessions is the live-session closed loop: -c workers create sessions
// and stream the same pre-encoded trace through each, leaving sessions open
// so the server's byte budget and TTL do the bounding — exactly the
// many-concurrent-users shape. Reports sessions/s, predict latency and the
// mean serialized bytes per trained session.
func (c *client) benchSessions(total, conc int, predictor, workload string, events int, stdout, stderr io.Writer) int {
	run := workload
	if run == "" {
		run = "eqn"
	}
	body, err := encodeWorkload(run, events)
	if err != nil {
		return fail(stderr, err)
	}

	var (
		//lint:shared closed-loop bench counters: per-session increments are dwarfed by HTTP round-trips
		next, completed, errors, shed atomic.Int64
		//lint:shared closed-loop bench counters: per-session increments are dwarfed by HTTP round-trips
		records, stateBytes atomic.Int64
		mu                  sync.Mutex
		p50                 = serve.NewP2(0.50)
		p99                 = serve.NewP2(0.99)
	)
	start := time.Now() //lint:wallclock load generator measures real elapsed time
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(total) {
				st, err := c.createSession(predictor, &shed)
				if err != nil {
					errors.Add(1)
					fmt.Fprintln(stderr, "ppmctl bench:", err)
					continue
				}
				t0 := time.Now() //lint:wallclock per-predict latency sample
				done, err := c.predictDone(st.ID, body)
				if err != nil {
					errors.Add(1)
					fmt.Fprintln(stderr, "ppmctl bench:", err)
					continue
				}
				ms := float64(time.Since(t0)) / float64(time.Millisecond) //lint:wallclock per-predict latency sample
				mu.Lock()
				p50.Observe(ms)
				p99.Observe(ms)
				mu.Unlock()
				records.Add(int64(done.Session.Records))
				stateBytes.Add(done.Session.StateBytes)
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) //lint:wallclock load generator measures real elapsed time

	doneN := completed.Load()
	fmt.Fprintf(stdout, "sessions:      %d/%d completed, %d errors, %d sheds retried\n",
		doneN, total, errors.Load(), shed.Load())
	fmt.Fprintf(stdout, "elapsed:       %.2fs\n", elapsed.Seconds())
	fmt.Fprintf(stdout, "throughput:    %.1f sessions/s\n", float64(doneN)/elapsed.Seconds())
	fmt.Fprintf(stdout, "records:       %d streamed\n", records.Load())
	if doneN > 0 {
		fmt.Fprintf(stdout, "bytes/session: %.0f\n", float64(stateBytes.Load())/float64(doneN))
	}
	fmt.Fprintf(stdout, "latency:       p50 %.1fms  p99 %.1fms (predict call)\n", p50.Quantile(), p99.Quantile())
	if errors.Load() > 0 {
		return 1
	}
	return 0
}

// predictDone streams one predict body and returns the terminal done event,
// discarding the per-dispatch lines.
func (c *client) predictDone(id string, body []byte) (serve.PredictEvent, error) {
	resp, err := http.Post(c.base+"/v1/sessions/"+id+"/predict",
		"application/x-ibt2", bytes.NewReader(body))
	if err != nil {
		return serve.PredictEvent{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.PredictEvent{}, errorBody(resp)
	}
	var done serve.PredictEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev serve.PredictEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return serve.PredictEvent{}, fmt.Errorf("bad stream line: %w", err)
		}
		switch ev.Type {
		case "done":
			done = ev
		case "error":
			return serve.PredictEvent{}, fmt.Errorf("session %s: %s", id, ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return serve.PredictEvent{}, err
	}
	if done.Type != "done" || done.Session == nil {
		return serve.PredictEvent{}, fmt.Errorf("session %s: stream ended without a done event", id)
	}
	return done, nil
}
