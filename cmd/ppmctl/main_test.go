package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/trace"
)

// testBackend runs a real serve.Server for the client to talk to.
func testBackend(t *testing.T) string {
	t.Helper()
	s := serve.New(serve.Config{MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return ts.URL
}

func ppmctl(t *testing.T, url string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-server", url}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSubmitWaitStatusResultsCancel(t *testing.T) {
	url := testBackend(t)

	code, out, errOut := ppmctl(t, url,
		"submit", "-suite", "fig6", "-workloads", "troff.ped,eqn", "-events", "400", "-wait")
	if code != 0 {
		t.Fatalf("submit -wait exit %d: %s", code, errOut)
	}
	// First line is the created status; the rest is the NDJSON stream.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var st serve.JobStatus
	if err := json.Unmarshal([]byte(lines[0]), &st); err != nil {
		t.Fatalf("first line not a status: %v", err)
	}
	if len(lines) != 1+2+1 { // status + two cells + done
		t.Fatalf("got %d output lines, want 4:\n%s", len(lines), out)
	}

	code, out, _ = ppmctl(t, url, "status", st.ID)
	if code != 0 || !strings.Contains(out, `"state":"done"`) {
		t.Fatalf("status exit %d out %q", code, out)
	}

	code, out, _ = ppmctl(t, url, "results", "-render", "-title", "smoke", st.ID)
	if code != 0 {
		t.Fatalf("results -render exit %d", code)
	}
	if !strings.Contains(out, "smoke") || !strings.Contains(out, "troff.ped") || !strings.Contains(out, "MEAN") {
		t.Errorf("rendered matrix missing expected rows:\n%s", out)
	}

	if code, _, _ = ppmctl(t, url, "cancel", st.ID); code != 0 {
		t.Errorf("cancel of finished job exit %d, want 0 (idempotent)", code)
	}
	if code, out, _ = ppmctl(t, url, "stats"); code != 0 || !strings.Contains(out, "jobs_completed") {
		t.Errorf("stats exit %d out %q", code, out)
	}
}

func TestUploadTraceFile(t *testing.T) {
	url := testBackend(t)

	cfg, _ := bench.ByName("eqn")
	cfg.Events = 300
	recs, _ := cfg.Records()
	path := filepath.Join(t.TempDir(), "eqn.ibt2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := ppmctl(t, url,
		"submit", "-trace", path, "-suite", "fig7", "-label", "eqn-upload")
	if code != 0 {
		t.Fatalf("upload exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, `"run":"eqn-upload"`) || !strings.Contains(out, `"type":"done"`) {
		t.Errorf("upload stream missing cell/done:\n%s", out)
	}
}

func TestBench(t *testing.T) {
	url := testBackend(t)
	code, out, errOut := ppmctl(t, url,
		"bench", "-c", "2", "-n", "4", "-workloads", "eqn", "-events", "200")
	if code != 0 {
		t.Fatalf("bench exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "4/4 completed, 0 errors") {
		t.Errorf("bench report:\n%s", out)
	}
	for _, want := range []string{"throughput:", "error rate:", "latency:"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench report missing %q:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	url := testBackend(t)
	if code, _, _ := ppmctl(t, url, "nonsense"); code != 2 {
		t.Errorf("unknown command exit %d, want 2", code)
	}
	if code, _, _ := ppmctl(t, url); code != 2 {
		t.Errorf("no command exit %d, want 2", code)
	}
	if code, _, errOut := ppmctl(t, url, "status", "j-404"); code != 1 || !strings.Contains(errOut, "no such job") {
		t.Errorf("missing job: exit %d err %q", code, errOut)
	}
	if code, _, errOut := ppmctl(t, url, "submit", "-suite", "fig99"); code != 1 || !strings.Contains(errOut, "unknown suite") {
		t.Errorf("bad suite: exit %d err %q", code, errOut)
	}
	if code, _, _ := ppmctl(t, "http://127.0.0.1:1", "stats"); code != 1 {
		t.Errorf("unreachable server exit %d, want 1", code)
	}
}
