// Command sitediag breaks a run's mispredictions down by site population
// and predictor — the tool used to attribute accuracy differences between
// predictor designs to the workload structures that cause them.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/predictor"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	run := flag.String("run", "photon", "benchmark run name")
	events := flag.Int("events", 60000, "dispatch events")
	flag.Parse()

	cfg, ok := bench.ByName(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown run %q\n", *run)
		os.Exit(1)
	}
	cfg.Events = *events
	var recs []trace.Record
	prof := analysis.NewProfiler()
	sum := cfg.Generate(func(r trace.Record) {
		recs = append(recs, r)
		prof.Observe(r)
	})

	names := bench.PredictorNames()
	perLabel := map[string]map[string]*stats.Counters{}
	preds := make([]predictor.IndirectPredictor, 0, len(names))
	for _, n := range names {
		p, _ := bench.NewPredictor(n)
		preds = append(preds, p)
	}
	for _, r := range recs {
		if r.MTIndirect() {
			label := sum.SiteByPC[r.PC]
			for i, p := range preds {
				t, ok := p.Predict(r.PC)
				m := perLabel[label]
				if m == nil {
					m = map[string]*stats.Counters{}
					perLabel[label] = m
				}
				c := m[names[i]]
				if c == nil {
					c = &stats.Counters{Predictor: names[i]}
					m[names[i]] = c
				}
				c.Record(ok && t == r.Target, ok)
				p.Update(r.PC, r.Target)
			}
		}
		for _, p := range preds {
			p.Observe(r)
		}
	}
	var labels []string
	for l := range perLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	fmt.Printf("%-18s %10s", "population", "execs")
	for _, n := range names {
		if len(n) > 8 {
			n = n[:8]
		}
		fmt.Printf(" %8s", n)
	}
	fmt.Println()
	for _, l := range labels {
		m := perLabel[l]
		fmt.Printf("%-18s %10d", l, m[names[0]].Lookups)
		for _, n := range names {
			fmt.Printf(" %8.2f", 100*m[n].MispredictionRatio())
		}
		fmt.Println()
	}

	// Per-population structure, in the paper's classification terms.
	type agg struct {
		execs                  uint64
		mono, lowent, poly     int
		entropyW, transitionsW float64
	}
	byLabel := map[string]*agg{}
	for _, b := range prof.Profiles() {
		label := sum.SiteByPC[b.PC]
		a := byLabel[label]
		if a == nil {
			a = &agg{}
			byLabel[label] = a
		}
		a.execs += b.Executions
		a.entropyW += b.Entropy * float64(b.Executions)
		a.transitionsW += b.TransitionRate * float64(b.Executions)
		switch {
		case b.Monomorphic():
			a.mono++
		case b.LowEntropy():
			a.lowent++
		default:
			a.poly++
		}
	}
	fmt.Printf("\n%-18s %8s %6s %6s %6s %10s %10s\n",
		"population", "execs", "mono", "lowE", "poly", "entropy", "transition")
	for _, l := range labels {
		a := byLabel[l]
		if a == nil || a.execs == 0 {
			continue
		}
		fmt.Printf("%-18s %8d %6d %6d %6d %10.2f %9.1f%%\n",
			l, a.execs, a.mono, a.lowent, a.poly,
			a.entropyW/float64(a.execs), 100*a.transitionsW/float64(a.execs))
	}
}
