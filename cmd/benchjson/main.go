// Command benchjson runs the predictor throughput benchmarks with -benchmem
// and renders the results as machine-readable JSON, one row per predictor:
// name, ns/op, B/op, allocs/op and the iteration count. `make bench`
// regenerates the checked-in snapshot BENCH_predictors.json, seeding the
// perf trajectory every future optimisation PR is measured against; the
// allocs_per_op column should stay 0 — the same invariant the hotpath
// analyzer and the zero-alloc tests enforce.
//
// The benchmark time is fixed in operation-count form (-benchtime=200000x)
// so the snapshot's shape — rows, iteration counts — is identical across
// machines; only the ns/op column reflects the host.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// result is one benchmark row of the JSON snapshot.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	out := flag.String("out", "BENCH_predictors.json", "output file ('-' for stdout)")
	benchRe := flag.String("bench", "^BenchmarkPredictorThroughput$", "benchmark regexp passed to go test")
	benchtime := flag.String("benchtime", "200000x", "benchtime passed to go test (operation-count form keeps the snapshot shape stable)")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run=^$",
		"-bench="+*benchRe, "-benchmem", "-benchtime="+*benchtime, ".")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: go test:", err)
		os.Exit(2)
	}

	results, err := parse(stdout.String())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results matched", *benchRe)
		os.Exit(2)
	}

	data, err := json.MarshalIndent(map[string][]result{"benchmarks": results}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')

	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Printf("benchjson: wrote %d benchmark rows to %s\n", len(results), *out)
}

// parse extracts rows from `go test -bench` output. A -benchmem line looks
// like:
//
//	BenchmarkPredictorThroughput/BTB-8  200000  52.1 ns/op  0 B/op  0 allocs/op
//
// Rows keep the tool's output order, which follows the declared predictor
// display order and is therefore deterministic.
func parse(output string) ([]result, error) {
	var results []result
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{Name: benchName(fields[0])}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed iteration count in %q", line)
		}
		r.Iterations = iters
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, err = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, err = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("malformed value %q in %q", v, line)
			}
		}
		results = append(results, r)
	}
	return results, nil
}

// benchName strips the benchmark function prefix and the trailing
// -GOMAXPROCS suffix, leaving the predictor label (e.g. "BTB"). The suffix
// is only present when GOMAXPROCS > 1 and is always numeric — labels like
// "TC-PIB" must survive.
func benchName(full string) string {
	if i := strings.LastIndexByte(full, '-'); i > 0 {
		if _, err := strconv.Atoi(full[i+1:]); err == nil {
			full = full[:i]
		}
	}
	if _, sub, ok := strings.Cut(full, "/"); ok {
		return sub
	}
	return strings.TrimPrefix(full, "Benchmark")
}
