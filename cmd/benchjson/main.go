// Command benchjson runs a benchmark suite and renders the results as
// machine-readable JSON. It has two modes:
//
// The default mode runs the predictor throughput benchmarks with -benchmem,
// one row per predictor: name, ns/op, B/op, allocs/op and the iteration
// count. `make bench` regenerates the checked-in snapshot
// BENCH_predictors.json, seeding the perf trajectory every future
// optimisation PR is measured against; the allocs_per_op column should stay
// 0 — the same invariant the hotpath analyzer and the zero-alloc tests
// enforce. The benchmark time is fixed in operation-count form
// (-benchtime=200000x) so the snapshot's shape — rows, iteration counts —
// is identical across machines; only the ns/op column reflects the host.
//
// With -experiments it instead runs BenchmarkExperiments in
// cmd/experiments at -benchtime=1x: the serial-nocache pass (the pre-cache
// record-engine baseline), the record engine's parallel-j4-cached pass, and
// the block engine's blocks-j1-cached / blocks-j4-cached passes over the
// full -all -ext grid. The snapshot (`make bench-experiments` →
// BENCH_experiments.json) records every wall-clock, the derived
// serial/parallel and serial/blocks speedups, and the cache traffic metrics
// proving each suite trace was generated exactly once.
//
// With -sessions it runs BenchmarkLiveSessions in internal/serve at a fixed
// op count: one op is one whole live session (create + predict stream over
// real HTTP), and the custom metrics — sessions/s, state-bytes/session,
// predict-p50-ms/predict-p99-ms — land in each row's metrics map. `make
// bench-sessions` regenerates the checked-in BENCH_sessions.json.
//
// The determinism analyzer bans time.Now outside tests, so all timing
// comes from the testing framework's benchmark clock, parsed from ns/op.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// result is one benchmark row of the JSON snapshot. Metrics carries any
// custom b.ReportMetric units (e.g. cache-hits) beyond the standard triple.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file ('-' for stdout; default depends on mode)")
	benchRe := flag.String("bench", "", "benchmark regexp passed to go test (default depends on mode)")
	benchtime := flag.String("benchtime", "", "benchtime passed to go test (default depends on mode)")
	experiments := flag.Bool("experiments", false, "snapshot the experiment-grid benchmark (serial vs parallel wall-clock) instead of predictor throughput")
	sessions := flag.Bool("sessions", false, "snapshot the live-session benchmark (sessions/s, predict latency, bytes/session) instead of predictor throughput")
	flag.Parse()

	pkg, defRe, defTime, defOut := ".", "^BenchmarkPredictorThroughput$", "200000x", "BENCH_predictors.json"
	if *experiments {
		pkg, defRe, defTime, defOut = "./cmd/experiments", "^BenchmarkExperiments$", "1x", "BENCH_experiments.json"
	}
	if *sessions {
		// Fixed op count keeps the snapshot's shape machine-independent,
		// like the predictor mode; only the timing columns reflect the host.
		pkg, defRe, defTime, defOut = "./internal/serve", "^BenchmarkLiveSessions$", "100x", "BENCH_sessions.json"
	}
	if *benchRe == "" {
		*benchRe = defRe
	}
	if *benchtime == "" {
		*benchtime = defTime
	}
	if *out == "" {
		*out = defOut
	}

	cmd := exec.Command("go", "test", "-run=^$",
		"-bench="+*benchRe, "-benchmem", "-benchtime="+*benchtime, pkg)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: go test:", err)
		os.Exit(2)
	}

	results, err := parse(stdout.String())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results matched", *benchRe)
		os.Exit(2)
	}

	payload := map[string]any{"benchmarks": results}
	if *experiments {
		if s, ok := speedup(results, "parallel-j4-cached"); ok {
			payload["speedup_serial_over_parallel"] = s
		}
		if s, ok := speedup(results, "blocks-j1-cached"); ok {
			payload["speedup_serial_over_blocks_j1"] = s
		}
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')

	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Printf("benchjson: wrote %d benchmark rows to %s\n", len(results), *out)
}

// speedup derives serial-nocache ns/op over the named variant's ns/op —
// how much faster one full experiment grid completes with that
// optimisation line on. parallel-j4-cached was the acceptance number of
// the parallel-runner PR; blocks-j1-cached is the single-core acceptance
// number of the block-engine PR.
func speedup(results []result, variant string) (float64, bool) {
	var serial, opt float64
	for _, r := range results {
		switch r.Name {
		case "serial-nocache":
			serial = r.NsPerOp
		case variant:
			opt = r.NsPerOp
		}
	}
	if serial <= 0 || opt <= 0 {
		return 0, false
	}
	// Two decimals: the snapshot is checked in, and sub-percent jitter
	// would churn it on every regeneration.
	return float64(int(100*serial/opt+0.5)) / 100, true
}

// parse extracts rows from `go test -bench` output. A -benchmem line looks
// like:
//
//	BenchmarkPredictorThroughput/BTB-8  200000  52.1 ns/op  0 B/op  0 allocs/op
//
// Unknown units (custom b.ReportMetric values such as cache-hits) land in
// the row's Metrics map. Rows keep the tool's output order, which follows
// the declared sub-benchmark order and is therefore deterministic.
func parse(output string) ([]result, error) {
	var results []result
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{Name: benchName(fields[0])}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed iteration count in %q", line)
		}
		r.Iterations = iters
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp, err = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, err = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64)
			default:
				var f float64
				f, err = strconv.ParseFloat(v, 64)
				if err == nil {
					if r.Metrics == nil {
						r.Metrics = make(map[string]float64)
					}
					r.Metrics[unit] = f
				}
			}
			if err != nil {
				return nil, fmt.Errorf("malformed value %q in %q", v, line)
			}
		}
		results = append(results, r)
	}
	return results, nil
}

// benchName strips the benchmark function prefix and the trailing
// -GOMAXPROCS suffix, leaving the sub-benchmark label (e.g. "BTB" or
// "serial-nocache"). The suffix is only present when GOMAXPROCS > 1 and is
// always numeric — labels like "TC-PIB" must survive.
func benchName(full string) string {
	if i := strings.LastIndexByte(full, '-'); i > 0 {
		if _, err := strconv.Atoi(full[i+1:]); err == nil {
			full = full[:i]
		}
	}
	if _, sub, ok := strings.Cut(full, "/"); ok {
		return sub
	}
	return strings.TrimPrefix(full, "Benchmark")
}
