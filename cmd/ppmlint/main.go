// Command ppmlint runs the repository's custom static analyzers — the
// machine-checked simulator invariants — over the packages matching the given
// patterns (default ./...):
//
//	determinism  no wall-clock/global randomness; map iteration order must
//	             not reach output or unsorted slices (//lint:sorted escapes)
//	pow2mask     &(n-1) index masks trace to constructor-validated
//	             power-of-two sizes
//	panicdoc     exported functions that can panic document it; messages use
//	             the `pkg: <reason>` format
//	ifaceassert  IndirectPredictor implementations carry compile-time
//	             var _ I = (*T)(nil) assertions
//	hotpath      no allocation sources in functions reachable from predictor
//	             Predict/Update/Lookup/Observe roots or //ppm:hotpath
//	             annotations (//lint:coldpath escapes cold branches)
//	ifacecall    no loop-carried interface dispatch on hot paths when the
//	             concrete type is provably unique (//lint:dynamic escapes)
//	golifetime   every go statement has a provable termination signal —
//	             context, WaitGroup, or channel receive (//ppm:daemon
//	             annotates process-lifetime goroutines, with a reason)
//	ctxflow      ctx-receiving functions thread their ctx; Background/TODO
//	             banned outside package main (//lint:rootctx escapes
//	             genuine roots)
//	lockorder    per-package mutex-acquisition graph: ordering cycles and
//	             locks held across blocking operations (//lint:lockheld
//	             escapes a justified blocking op)
//	mustclose    Close/Flush/Shutdown/Sync error returns must be checked
//	             or explicitly discarded (//lint:closeerr escapes)
//	idxmask      slice indices into predictor tables must be provably
//	             in-bounds — a power-of-two mask, a modulus by len, or a
//	             value compared against len (//lint:idxsafe escapes)
//	falseshare   atomic counter fields may not share a cache line; pad each
//	             to 64 bytes (//lint:shared escapes)
//
// ppmlint prints each finding as file:line:col: message [analyzer] and exits
// non-zero when there are findings, so `make lint` and CI fail on them. With
// -json, findings stream as NDJSON objects ({file, line, col, analyzer,
// message, escape}) for machine consumers; the escape field carries the
// analyzer's escape-hatch directive so tooling can offer the annotation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/falseshare"
	"repro/internal/lint/golifetime"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/idxmask"
	"repro/internal/lint/ifaceassert"
	"repro/internal/lint/ifacecall"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/mustclose"
	"repro/internal/lint/panicdoc"
	"repro/internal/lint/pow2mask"
)

var analyzers = []*lint.Analyzer{
	ctxflow.Analyzer,
	determinism.Analyzer,
	falseshare.Analyzer,
	golifetime.Analyzer,
	hotpath.Analyzer,
	idxmask.Analyzer,
	ifaceassert.Analyzer,
	ifacecall.Analyzer,
	lockorder.Analyzer,
	mustclose.Analyzer,
	panicdoc.Analyzer,
	pow2mask.Analyzer,
}

func main() {
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as NDJSON (one {file,line,col,analyzer,message,escape} object per line)")
	flag.Usage = usage
	flag.Parse()

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmlint:", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Escape:   d.Escape,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "ppmlint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// jsonDiag is the NDJSON shape of one finding. The escape field names the
// analyzer's escape-hatch directive (e.g. "//lint:idxsafe <reason>"), or ""
// when the analyzer has none.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Escape   string `json:"escape,omitempty"`
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ppmlint [-run a,b] [-json] [packages]\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}
