// Command ppmlint runs the repository's custom static analyzers — the
// machine-checked simulator invariants — over the packages matching the given
// patterns (default ./...):
//
//	determinism  no wall-clock/global randomness; map iteration order must
//	             not reach output or unsorted slices (//lint:sorted escapes)
//	pow2mask     &(n-1) index masks trace to constructor-validated
//	             power-of-two sizes
//	panicdoc     exported functions that can panic document it; messages use
//	             the `pkg: <reason>` format
//	ifaceassert  IndirectPredictor implementations carry compile-time
//	             var _ I = (*T)(nil) assertions
//	hotpath      no allocation sources in functions reachable from predictor
//	             Predict/Update/Lookup/Observe roots or //ppm:hotpath
//	             annotations (//lint:coldpath escapes cold branches)
//	ifacecall    no loop-carried interface dispatch on hot paths when the
//	             concrete type is provably unique (//lint:dynamic escapes)
//	golifetime   every go statement has a provable termination signal —
//	             context, WaitGroup, or channel receive (//ppm:daemon
//	             annotates process-lifetime goroutines, with a reason)
//	ctxflow      ctx-receiving functions thread their ctx; Background/TODO
//	             banned outside package main (//lint:rootctx escapes
//	             genuine roots)
//	lockorder    per-package mutex-acquisition graph: ordering cycles and
//	             locks held across blocking operations (//lint:lockheld
//	             escapes a justified blocking op)
//	mustclose    Close/Flush/Shutdown/Sync error returns must be checked
//	             or explicitly discarded (//lint:closeerr escapes)
//
// ppmlint prints each finding as file:line:col: message [analyzer] and exits
// non-zero when there are findings, so `make lint` and CI fail on them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/golifetime"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/ifaceassert"
	"repro/internal/lint/ifacecall"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/mustclose"
	"repro/internal/lint/panicdoc"
	"repro/internal/lint/pow2mask"
)

var analyzers = []*lint.Analyzer{
	ctxflow.Analyzer,
	determinism.Analyzer,
	golifetime.Analyzer,
	hotpath.Analyzer,
	ifaceassert.Analyzer,
	ifacecall.Analyzer,
	lockorder.Analyzer,
	mustclose.Analyzer,
	panicdoc.Analyzer,
	pow2mask.Analyzer,
}

func main() {
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = usage
	flag.Parse()

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppmlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ppmlint [-run a,b] [packages]\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}
